"""Ablation (§9): the isolation-vs-utilization spectrum of schedulers.

The discussion section argues IBIS exposes a trade-off dial: native
(work-conserving, no control) → SFQ(D2) (work-conserving, controlled) →
a non-work-conserving reservation scheduler (strict isolation, storage
underutilized).  This bench measures all three points on the WC+TG
scenario."""

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.core.reservation import ReservationScheduler
from repro.cluster import BigDataCluster
from repro.experiments import ExperimentResult, controller_for
from repro.experiments.harness import total_throughput_mbs
from repro.workloads import teragen, wordcount


def _install_reservations(cluster: BigDataCluster, reservations, nominal):
    """Swap every interposed scheduler for a ReservationScheduler."""
    for node in cluster.nodes.values():
        for io_class, old in list(node.schedulers.items()):
            node.schedulers[io_class] = ReservationScheduler(
                cluster.sim, old.device, reservations, nominal,
                name=f"{node.node_id}:{io_class.value}:resv",
            )


def run_ablation():
    config = default_cluster()
    result = ExperimentResult("ablation_reservation")

    def wc_run(policy, reservations=None):
        cluster = BigDataCluster(config, policy)
        if reservations is not None:
            _install_reservations(cluster, reservations,
                                  nominal=config.storage.peak_rate)
        cluster.preload_input("/in/wiki", 50 * GB)
        wc = cluster.submit(wordcount(config, "/in/wiki"),
                            io_weight=32.0, max_cores=48)
        cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
        cluster.run(wc.done)
        return wc, total_throughput_mbs(cluster, wc.finish_time)

    alone_cluster = BigDataCluster(config, PolicySpec.native())
    alone_cluster.preload_input("/in/wiki", 50 * GB)
    alone = alone_cluster.submit(wordcount(config, "/in/wiki"),
                                 io_weight=1.0, max_cores=48)
    alone_cluster.run()
    standalone = alone.runtime

    wc, thr_native = wc_run(PolicySpec.native())
    result.row(case="native", slowdown=wc.runtime / standalone - 1.0,
               throughput_mbs=thr_native)
    wc, thr = wc_run(PolicySpec.sfqd2(controller_for(config)))
    result.row(case="sfq(d2)", slowdown=wc.runtime / standalone - 1.0,
               throughput_mbs=thr)
    wc, thr = wc_run(PolicySpec.native(),
                     reservations={"wordcount": 0.6, "teragen": 0.3})
    result.row(case="reservation", slowdown=wc.runtime / standalone - 1.0,
               throughput_mbs=thr)
    return result


def test_ablation_reservation(benchmark, report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(result)

    native = result.find(case="native")
    dyn = result.find(case="sfq(d2)")
    resv = result.find(case="reservation")

    # Isolation ordering: reservation <= sfq(d2) << native.
    assert resv["slowdown"] < native["slowdown"]
    assert dyn["slowdown"] < native["slowdown"]
    assert resv["slowdown"] <= dyn["slowdown"] + 0.05
    # Utilization cost of non-work-conservation: reservation throughput
    # is clearly below both work-conserving schedulers (§9).
    assert resv["throughput_mbs"] < 0.8 * native["throughput_mbs"]
    assert dyn["throughput_mbs"] > 0.85 * native["throughput_mbs"]
