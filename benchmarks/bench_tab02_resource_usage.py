"""Table 2: CPU and memory usage of the daemons hosting IBIS."""

from repro.experiments import tab2_resource_usage


def test_tab2_resource_usage(benchmark, report):
    result = benchmark.pedantic(tab2_resource_usage, rounds=1, iterations=1)
    report(result)

    for app in ("wordcount", "teragen", "terasort"):
        native = result.find(app=app, case="native")
        ibis = result.find(app=app, case="ibis")
        # IBIS adds daemon work (tagging, queuing, broker traffic) but
        # stays modest — single-digit per-core CPU %, like Table 2.
        assert ibis["cpu_pct"] >= native["cpu_pct"]
        assert ibis["cpu_pct"] < 12.0
        assert ibis["mem_mb_per_node"] < 64.0
