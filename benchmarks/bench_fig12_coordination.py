"""Figure 12: distributed scheduling coordination off (No Sync) vs on
(Sync) — total-service proportional sharing under skewed data placement."""

from repro.experiments import fig12_coordination


def test_fig12_coordination(benchmark, report):
    result = benchmark.pedantic(fig12_coordination, rounds=1, iterations=1)
    report(result)

    nosync = result.find(case="no sync")
    sync = result.find(case="sync")

    # §5's objective: equal-weight applications should split the TOTAL
    # I/O service 1:1.  Without coordination the evenly-spread scan
    # collects a large multiple of the skewed scan's service; with the
    # broker the ratio approaches the target.
    assert nosync["total_service_ratio"] > 1.8
    assert sync["total_service_ratio"] < 1.5
    assert sync["ratio_error"] < 0.5 * nosync["ratio_error"]

    # The under-served (skewed) application's slowdown improves.
    assert sync["hot_slowdown"] < nosync["hot_slowdown"]
