"""Ablation (§4): sensitivity of SFQ(D2) to the controller parameters.

Sweeps the integral gain K and the reference-latency choice (via the
profiling saturation fraction) on the WC+TG isolation scenario.  The
paper's design choices are that a pre-saturation Lref and a healthy
gain hold the isolation/utilization balance; too-large Lref drifts the
scheduler toward native behaviour."""

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.cluster import BigDataCluster
from repro.experiments import ExperimentResult
from repro.experiments.harness import total_throughput_mbs
from repro.core.profiling import calibrate_controller
from repro.workloads import teragen, wordcount


def run_sweep():
    config = default_cluster()
    result = ExperimentResult("ablation_controller")

    def wc_run(policy):
        cluster = BigDataCluster(config, policy)
        cluster.preload_input("/in/wiki", 50 * GB)
        wc = cluster.submit(wordcount(config, "/in/wiki"),
                            io_weight=32.0, max_cores=48)
        cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
        cluster.run(wc.done)
        return wc.runtime, total_throughput_mbs(cluster, wc.finish_time)

    alone_cluster = BigDataCluster(config, PolicySpec.native())
    alone_cluster.preload_input("/in/wiki", 50 * GB)
    alone = alone_cluster.submit(wordcount(config, "/in/wiki"),
                                 io_weight=1.0, max_cores=48)
    alone_cluster.run()
    standalone = alone.runtime

    for gain in (5.0, 30.0, 120.0):
        ctrl = calibrate_controller(config, gain=gain)
        rt, thr = wc_run(PolicySpec.sfqd2(ctrl))
        result.row(knob="gain", value=gain, lref_ms=ctrl.ref_latency_read * 1e3,
                   slowdown=rt / standalone - 1.0, throughput_mbs=thr)
    for sat in (0.5, 0.9, 1.0):
        ctrl = calibrate_controller(config, saturation_fraction=sat)
        rt, thr = wc_run(PolicySpec.sfqd2(ctrl))
        result.row(knob="saturation", value=sat,
                   lref_ms=ctrl.ref_latency_read * 1e3,
                   slowdown=rt / standalone - 1.0, throughput_mbs=thr)
    return result


def test_ablation_controller(benchmark, report):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(result)

    sats = [r for r in result.rows if r["knob"] == "saturation"]
    # Lref grows with the saturation fraction (deeper operating point).
    lrefs = [r["lref_ms"] for r in sats]
    assert lrefs == sorted(lrefs)
    # A too-deep reference (sat=1.0) hurts isolation vs the paper's
    # pre-saturation choice.
    pre = next(r for r in sats if r["value"] == 0.5)
    deep = next(r for r in sats if r["value"] == 1.0)
    assert pre["slowdown"] <= deep["slowdown"] + 0.02
    # All gains converge to workable isolation (the integral controller
    # is robust), staying within 2x of the best.
    gains = [r["slowdown"] for r in result.rows if r["knob"] == "gain"]
    assert max(gains) < 2.5 * max(min(gains), 0.05) + 0.1
