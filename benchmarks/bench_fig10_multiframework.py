"""Figure 10a/10b: TPC-H on Hive vs TeraSort on MapReduce — native,
cgroups weight 100:1, cgroups throttle, and IBIS 100:1."""

from repro.experiments import fig10_multiframework


def test_fig10_multiframework(benchmark, report):
    result = benchmark.pedantic(fig10_multiframework, rounds=1, iterations=1)
    report(result)

    for query in ("q21", "q9"):
        native = result.find(query=query, case="native")
        cgw = result.find(query=query, case="cg(weight)-100:1")
        cgt = result.find(query=query, case="cg(throttle)")
        ibis = result.find(query=query, case="ibis-100:1")

        # The queries lose noticeable performance under contention.
        assert native["query_rel_perf"] < 0.92
        # IBIS restores the query best (or ties) — it schedules HDFS
        # I/O, which cgroups cannot see.
        assert ibis["query_rel_perf"] >= cgw["query_rel_perf"] - 0.02
        assert ibis["query_rel_perf"] > native["query_rel_perf"] + 0.015

    # Q21 is persistent-I/O heavy: cgroups barely helps it (paper: +1-3%)
    q21_native = result.find(query="q21", case="native")
    q21_cgw = result.find(query="q21", case="cg(weight)-100:1")
    q21_ibis = result.find(query="q21", case="ibis-100:1")
    assert q21_ibis["query_rel_perf"] - q21_native["query_rel_perf"] > \
        2 * max(0.0, q21_cgw["query_rel_perf"] - q21_native["query_rel_perf"]) - 0.02

    # Throttling is non-work-conserving: TeraSort does worse under it
    # than under IBIS (paper: up to 16%).
    for query in ("q21", "q9"):
        cgt = result.find(query=query, case="cg(throttle)")
        ibis = result.find(query=query, case="ibis-100:1")
        assert ibis["ts_rel_perf"] >= cgt["ts_rel_perf"] - 0.02
