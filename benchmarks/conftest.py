"""Benchmark-suite configuration.

Every benchmark reproduces one figure or table of the paper: it runs
the corresponding experiment from :mod:`repro.experiments`, prints the
rows/series the paper reports, and asserts the headline *shape* (who
wins, roughly by how much) so regressions are caught.  Timings reported
by pytest-benchmark measure the cost of regenerating each artifact.
"""

import pytest


@pytest.fixture
def report():
    """Print an experiment result so it lands in the bench log."""
    from repro.experiments import format_result

    def _print(result):
        text = format_result(result)
        print("\n" + text)
        return text

    return _print
